#include "bench/experiments.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <utility>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim: see ReleaseFreedHeap below.
#endif

#include "baselines/factory.h"
#include "bench/reporter.h"
#include "core/distribution_labeling.h"
#include "core/prefilter.h"
#include "core/reachability.h"
#include "query/workload.h"
#include "server/client.h"
#include "server/server.h"
#include "server/snapshot.h"
#include "util/resource.h"
#include "util/timer.h"

namespace reach {
namespace bench {

namespace {

/// Metrics measured by timing Reachable() over a workload in-process (the
/// serve metric also runs a workload, but through the wire).
bool IsQueryMetric(Metric metric) {
  return metric == Metric::kQueryMillis || metric == Metric::kQueryNanos;
}

std::vector<DatasetSpec> FilterDatasets(const std::vector<DatasetSpec>& all,
                                        const BenchConfig& config) {
  if (config.datasets.empty()) return all;
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& spec : all) {
    for (const std::string& wanted : config.datasets) {
      if (spec.name == wanted) {
        // A filter is a set: a name repeated in --datasets must not run
        // (and report) the dataset twice.
        out.push_back(spec);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> MethodsFor(const ExperimentSpec& spec,
                                    const BenchConfig& config) {
  if (config.methods.empty()) {
    return spec.default_methods.empty() ? PaperOracleNames()
                                        : spec.default_methods;
  }
  // A filter is a set here too: a method repeated in --methods must not
  // run (and report) the same cell twice.
  std::vector<std::string> methods;
  for (const std::string& method : config.methods) {
    if (std::find(methods.begin(), methods.end(), method) == methods.end()) {
      methods.push_back(method);
    }
  }
  return methods;
}

DatasetInfo MakeDatasetInfo(const DatasetSpec& spec, const Digraph& g) {
  DatasetInfo info;
  info.name = spec.name;
  info.large = spec.large;
  info.family = GraphFamilyName(spec.family);
  info.scale = spec.scale;
  info.paper_vertices = spec.paper_vertices;
  info.paper_edges = spec.paper_edges;
  info.vertices = g.num_vertices();
  info.edges = g.num_edges();
  return info;
}

void RunInventory(const ExperimentSpec& spec, const BenchConfig& config,
                  Reporter* reporter, RunCache* cache) {
  reporter->BeginExperiment(spec, {}, config);
  for (const std::vector<DatasetSpec>* tier :
       {&SmallDatasets(), &LargeDatasets()}) {
    for (const DatasetSpec& d : FilterDatasets(*tier, config)) {
      Digraph local_graph;
      const Digraph& graph =
          cache != nullptr ? cache->Graph(d)
                           : (local_graph = MakeDataset(d), local_graph);
      reporter->AddDatasetInfo(MakeDatasetInfo(d, graph));
    }
  }
  reporter->EndExperiment();
}

/// Builds the record for a cell from its BuildStats (cached or fresh):
/// either the DNF/"--" form or, for stats-only metrics, the measured value.
/// For a successful query-metric cell the caller overwrites `value` with
/// the timed query loop afterwards.
RunRecord StatsRecord(const ExperimentSpec& spec, const std::string& dataset,
                      const std::string& method, const BuildStats& stats) {
  RunRecord record;
  record.dataset = dataset;
  record.method = method;
  record.metric = MetricName(spec.metric);
  record.build_ms = stats.build_millis;
  record.index_integers = stats.index_integers;
  record.index_bytes = stats.index_bytes;
  record.threads = stats.threads;
  if (!stats.ok) {
    record.budget_exceeded = stats.budget_exceeded;
    record.note = stats.failure_reason;
    return record;
  }
  record.ok = true;
  record.value = spec.metric == Metric::kConstructionMillis
                     ? stats.build_millis
                     : static_cast<double>(stats.index_integers);
  return record;
}

void RunTable(const ExperimentSpec& spec, const BenchConfig& config,
              Reporter* reporter, RunCache* cache) {
  const std::vector<DatasetSpec> datasets =
      FilterDatasets(DatasetsFor(spec), config);
  const std::vector<std::string> methods = MethodsFor(spec, config);

  reporter->BeginExperiment(spec, methods, config);
  // A requested dataset from the other tier passed global validation but
  // has no row here; say so rather than silently shrinking the table.
  for (const std::string& wanted : config.datasets) {
    bool present = false;
    for (const DatasetSpec& dataset : datasets) {
      present |= dataset.name == wanted;
    }
    if (!present) {
      reporter->DatasetError(wanted,
                             "not part of this experiment's dataset tier");
    }
  }
  for (const DatasetSpec& dataset : datasets) {
    Digraph local_graph;
    const Digraph& graph =
        cache != nullptr
            ? cache->Graph(dataset)
            : (local_graph = MakeDataset(dataset), local_graph);

    BuildOptions build_options;
    build_options.threads = config.threads;

    // Workload (query tables only): ground truth via DL, whose correctness
    // the test suite establishes independently of any method under test.
    Workload workload;
    if (IsQueryMetric(spec.metric)) {
      DistributionLabelingOracle local_truth;
      const ReachabilityOracle* truth = nullptr;
      if (cache != nullptr) {
        truth = cache->TruthOracle(dataset.name, graph, config.threads);
      } else if (local_truth.Build(graph, build_options).ok()) {
        truth = &local_truth;
      }
      if (truth == nullptr) {
        reporter->DatasetError(dataset.name, "workload truth build failed");
        continue;
      }
      WorkloadOptions options;
      options.num_queries = config.num_queries;
      options.seed = 7 + dataset.seed;
      workload = spec.workload == WorkloadKind::kEqual
                     ? MakeEqualWorkload(graph, *truth, options)
                     : MakeRandomWorkload(graph, *truth, options);
    }

    BuildBudget budget;
    budget.max_seconds = config.build_time_budget_seconds;
    budget.max_index_integers = config.build_index_budget_integers;

    for (const std::string& method : methods) {
      // A cached outcome replaces the build when it was a failure (retrying
      // would burn the full budget again for the same result) or when the
      // metric only needs stats; a successful query-table cell still needs
      // the live oracle.
      const BuildStats* cached =
          cache == nullptr ? nullptr
                           : cache->FindBuild(dataset.name, method, budget);
      if (cached != nullptr && (!cached->ok || !IsQueryMetric(spec.metric))) {
        reporter->AddRecord(StatsRecord(spec, dataset.name, method, *cached));
        continue;
      }

      std::unique_ptr<ReachabilityOracle> oracle = MakeOracle(method);
      if (oracle == nullptr) {
        RunRecord record;
        record.dataset = dataset.name;
        record.method = method;
        record.metric = MetricName(spec.metric);
        record.note = std::string("unknown method");
        reporter->AddRecord(record);
        continue;
      }
      oracle->set_budget(budget);

      const Status status = oracle->Build(graph, build_options);
      const BuildStats& stats = oracle->build_stats();
      if (cache != nullptr) {
        cache->InsertBuild(dataset.name, method, budget, stats);
      }
      if (!status.ok() || !IsQueryMetric(spec.metric)) {
        reporter->AddRecord(StatsRecord(spec, dataset.name, method, stats));
        continue;
      }

      RunRecord record = StatsRecord(spec, dataset.name, method, stats);
      // The ns/query metric repeats the workload until ~1M queries total,
      // so the per-query number is averaged over a stable window even
      // under --quick's small workloads; ms/100k keeps the paper tables'
      // single-pass semantics.
      const size_t passes =
          spec.metric == Metric::kQueryNanos
              ? (999999 / workload.queries.size()) + 1
              : 1;
      // Grouped specs sort a copy outside the timed window: the measured
      // delta is then purely the cache effect of same-source adjacency,
      // not the sort itself (a server amortizes that sort per frame).
      std::vector<Query> grouped;
      const std::vector<Query>* run_queries = &workload.queries;
      if (spec.group_queries_by_source) {
        grouped = workload.queries;
        std::stable_sort(
            grouped.begin(), grouped.end(),
            [](const Query& a, const Query& b) { return a.from < b.from; });
        run_queries = &grouped;
      }
      Timer query_timer;
      size_t hits = 0;
      for (size_t pass = 0; pass < passes; ++pass) {
        for (const Query& q : *run_queries) {
          hits += oracle->Reachable(q.from, q.to);
        }
      }
      const double elapsed_ms = query_timer.ElapsedMillis();
      const double total_queries =
          static_cast<double>(passes) *
          static_cast<double>(workload.queries.size());
      record.value = spec.metric == Metric::kQueryNanos
                         ? elapsed_ms * 1e6 / total_queries
                         : elapsed_ms * 100000.0 / total_queries;
      // Guard against dead-code elimination of the query loop.
      if (hits == SIZE_MAX) record.note.push_back('!');
      reporter->AddRecord(record);
    }
  }
  reporter->EndExperiment();
}

/// Serving-layer throughput: per (dataset, method) cell, build the oracle
/// inside a ReachServer on an ephemeral loopback port, send the whole
/// workload as one BATCH frame, and report end-to-end queries/second.
/// Every answer is cross-checked against the server's own in-process index
/// — a divergence is a correctness failure, not a slow cell.
void RunServe(const ExperimentSpec& spec, const BenchConfig& config,
              Reporter* reporter, RunCache* cache) {
  const std::vector<DatasetSpec> datasets =
      FilterDatasets(DatasetsFor(spec), config);
  const std::vector<std::string> methods = MethodsFor(spec, config);

  reporter->BeginExperiment(spec, methods, config);
  for (const std::string& wanted : config.datasets) {
    bool present = false;
    for (const DatasetSpec& dataset : datasets) {
      present |= dataset.name == wanted;
    }
    if (!present) {
      reporter->DatasetError(wanted,
                             "not part of this experiment's dataset rows");
    }
  }

  BuildBudget budget;
  budget.max_seconds = config.build_time_budget_seconds;
  budget.max_index_integers = config.build_index_budget_integers;

  for (const DatasetSpec& dataset : datasets) {
    Digraph local_graph;
    const Digraph& graph =
        cache != nullptr
            ? cache->Graph(dataset)
            : (local_graph = MakeDataset(dataset), local_graph);

    // The workload ground truth mirrors the query tables (DL).
    DistributionLabelingOracle local_truth;
    const ReachabilityOracle* truth = nullptr;
    BuildOptions build_options;
    build_options.threads = config.threads;
    if (cache != nullptr) {
      truth = cache->TruthOracle(dataset.name, graph, config.threads);
    } else if (local_truth.Build(graph, build_options).ok()) {
      truth = &local_truth;
    }
    if (truth == nullptr) {
      reporter->DatasetError(dataset.name, "workload truth build failed");
      continue;
    }
    WorkloadOptions workload_options;
    workload_options.num_queries = config.num_queries;
    workload_options.seed = 7 + dataset.seed;
    const Workload workload =
        MakeEqualWorkload(graph, *truth, workload_options);
    std::vector<std::pair<Vertex, Vertex>> queries;
    queries.reserve(workload.queries.size());
    for (const Query& q : workload.queries) {
      queries.emplace_back(q.from, q.to);
    }

    for (const std::string& method : methods) {
      // Serve builds run on the SCC condensation (vertex ids relabeled),
      // so their stats are NOT interchangeable with RunTable's raw-graph
      // builds — the cache key is namespaced to keep the table/figure
      // cells order-independent. A cached serve failure is still final
      // for this budget: skip the doomed server start.
      const std::string cache_method = method + "@serve";
      const BuildStats* cached =
          cache == nullptr
              ? nullptr
              : cache->FindBuild(dataset.name, cache_method, budget);
      if (cached != nullptr && !cached->ok) {
        reporter->AddRecord(StatsRecord(spec, dataset.name, method, *cached));
        continue;
      }

      server::ReachServer reach_server;
      server::ServerOptions server_options;
      server_options.method = method;
      server_options.build_threads = config.threads;
      server_options.budget = budget;
      server_options.workers = 2;
      // One BATCH frame carries the whole workload.
      server_options.limits.max_batch =
          std::max<uint64_t>(server_options.limits.max_batch,
                             queries.size());
      const Status started = reach_server.Start(graph, server_options);
      const BuildStats& stats = reach_server.build_stats();
      if (cache != nullptr) {
        cache->InsertBuild(dataset.name, cache_method, budget, stats);
      }
      RunRecord record = StatsRecord(spec, dataset.name, method, stats);
      if (!started.ok()) {
        if (record.note.empty()) record.note = started.ToString();
        record.ok = false;
        reporter->AddRecord(record);
        continue;
      }

      // Expected bytes from the in-process index, computed outside the
      // timed window.
      const std::shared_ptr<const ReachabilityIndex> index =
          reach_server.index();
      std::vector<std::string> expected;
      expected.reserve(queries.size());
      for (const auto& [u, v] : queries) {
        expected.push_back(index->Reachable(u, v) ? "1" : "0");
      }

      server::Client client;
      Status client_status =
          client.Connect("127.0.0.1", reach_server.port());
      if (client_status.ok()) {
        Timer timer;
        const StatusOr<std::vector<std::string>> answers =
            client.Batch(queries);
        const double elapsed_ms = timer.ElapsedMillis();
        if (!answers.ok()) {
          client_status = answers.status();
        } else if (*answers != expected) {
          record.ok = false;
          record.note = "server answers diverged from in-process oracle";
        } else {
          record.value = elapsed_ms > 0
                             ? static_cast<double>(queries.size()) * 1000.0 /
                                   elapsed_ms
                             : 0;
        }
      }
      if (!client_status.ok()) {
        record.ok = false;
        record.note = client_status.ToString();
      }
      client.Close();
      reach_server.Stop();
      reporter->AddRecord(record);
    }
  }
  reporter->EndExperiment();
}

/// Pre-filter tier: every row is one (dataset, query mix) pair and every
/// method contributes two columns — bare and wrapped in PrefilterOracle —
/// so the ns/query delta and the per-mix hit rate land side by side.
/// Before the timed loops the wrapped oracle's answers are cross-checked
/// against the bare oracle AND the workload's ground-truth labels over the
/// whole workload: a pre-filter that changes even one answer reports a
/// failed cell, not a fast one. The wrapped cell's note records the
/// fraction of queries the O(1) stages resolved ("hit_rate=NN.N%").
void RunPrefilter(const ExperimentSpec& spec, const BenchConfig& config,
                  Reporter* reporter, RunCache* cache) {
  const std::vector<DatasetSpec> datasets =
      FilterDatasets(DatasetsFor(spec), config);
  const std::vector<std::string> methods = MethodsFor(spec, config);
  std::vector<std::string> columns;
  for (const std::string& method : methods) {
    columns.push_back(method);
    columns.push_back(method + "+pf");
  }

  reporter->BeginExperiment(spec, columns, config);
  for (const std::string& wanted : config.datasets) {
    bool present = false;
    for (const DatasetSpec& dataset : datasets) {
      present |= dataset.name == wanted;
    }
    if (!present) {
      reporter->DatasetError(wanted,
                             "not part of this experiment's dataset rows");
    }
  }

  BuildBudget budget;
  budget.max_seconds = config.build_time_budget_seconds;
  budget.max_index_integers = config.build_index_budget_integers;
  constexpr QueryMix kMixes[] = {QueryMix::kNegativeHeavy, QueryMix::kMixed,
                                 QueryMix::kPositiveHeavy};

  for (const DatasetSpec& dataset : datasets) {
    Digraph local_graph;
    const Digraph& graph =
        cache != nullptr
            ? cache->Graph(dataset)
            : (local_graph = MakeDataset(dataset), local_graph);

    DistributionLabelingOracle local_truth;
    const ReachabilityOracle* truth = nullptr;
    BuildOptions build_options;
    build_options.threads = config.threads;
    if (cache != nullptr) {
      truth = cache->TruthOracle(dataset.name, graph, config.threads);
    } else if (local_truth.Build(graph, build_options).ok()) {
      truth = &local_truth;
    }
    if (truth == nullptr) {
      reporter->DatasetError(dataset.name, "workload truth build failed");
      continue;
    }

    for (const QueryMix mix : kMixes) {
      const std::string row =
          dataset.name + "/" + QueryMixName(mix);
      WorkloadOptions workload_options;
      workload_options.num_queries = config.num_queries;
      workload_options.seed =
          101 + dataset.seed * 4 + static_cast<uint64_t>(mix);
      const Workload workload =
          MakeMixWorkload(graph, *truth, workload_options, mix);
      if (workload.queries.empty()) {
        reporter->DatasetError(row, "empty workload");
        continue;
      }
      // The ns/query loops repeat the workload to ~1M queries total, same
      // averaging window as the query_quick experiment.
      const size_t passes = (999999 / workload.queries.size()) + 1;

      for (const std::string& method : methods) {
        std::unique_ptr<ReachabilityOracle> bare = MakeOracle(method);
        std::unique_ptr<ReachabilityOracle> inner = MakeOracle(method);
        if (bare == nullptr || inner == nullptr) {
          for (const char* suffix : {"", "+pf"}) {
            RunRecord record;
            record.dataset = row;
            record.method = method + suffix;
            record.metric = MetricName(spec.metric);
            record.note = "unknown method";
            reporter->AddRecord(record);
          }
          continue;
        }
        PrefilterOracle wrapped(std::move(inner));
        bare->set_budget(budget);
        wrapped.set_budget(budget);
        const Status bare_status = bare->Build(graph, build_options);
        const Status wrapped_status = wrapped.Build(graph, build_options);
        RunRecord bare_record =
            StatsRecord(spec, row, method, bare->build_stats());
        RunRecord wrapped_record =
            StatsRecord(spec, row, method + "+pf", wrapped.build_stats());
        if (!bare_status.ok() || !wrapped_status.ok()) {
          reporter->AddRecord(bare_record);
          reporter->AddRecord(wrapped_record);
          continue;
        }

        // Soundness gate before any timing: wrapped and bare must answer
        // the whole workload identically, and both must match the
        // truth-derived labels.
        bool sound = true;
        for (const Query& q : workload.queries) {
          const bool bare_answer = bare->Reachable(q.from, q.to);
          if (bare_answer != wrapped.Reachable(q.from, q.to) ||
              bare_answer != q.reachable) {
            sound = false;
            break;
          }
        }
        if (!sound) {
          bare_record.ok = false;
          wrapped_record.ok = false;
          wrapped_record.note = "prefilter answers diverged";
          reporter->AddRecord(bare_record);
          reporter->AddRecord(wrapped_record);
          continue;
        }

        // Hit rates come from one untimed counted pass; the timed loops
        // below run with counting off so neither side pays for the
        // instrumentation (the locked add is measurable at this scale).
        wrapped.ResetCounters();
        for (const Query& q : workload.queries) {
          wrapped.Reachable(q.from, q.to);
        }
        const PrefilterStageCounters counters = wrapped.counters();

        size_t hits = 0;
        Timer bare_timer;
        for (size_t pass = 0; pass < passes; ++pass) {
          for (const Query& q : workload.queries) {
            hits += bare->Reachable(q.from, q.to);
          }
        }
        const double bare_ms = bare_timer.ElapsedMillis();

        wrapped.set_counting_enabled(false);
        Timer wrapped_timer;
        for (size_t pass = 0; pass < passes; ++pass) {
          for (const Query& q : workload.queries) {
            hits += wrapped.Reachable(q.from, q.to);
          }
        }
        const double wrapped_ms = wrapped_timer.ElapsedMillis();
        wrapped.set_counting_enabled(true);
        const double total_queries =
            static_cast<double>(passes) *
            static_cast<double>(workload.queries.size());
        bare_record.value = bare_ms * 1e6 / total_queries;
        wrapped_record.value = wrapped_ms * 1e6 / total_queries;
        char note[32];
        std::snprintf(note, sizeof(note), "hit_rate=%.1f%%",
                      counters.Total() == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(counters.Hits()) /
                                static_cast<double>(counters.Total()));
        wrapped_record.note = note;
        // Guard against dead-code elimination of the query loops.
        if (hits == SIZE_MAX) wrapped_record.note.push_back('!');
        reporter->AddRecord(bare_record);
        reporter->AddRecord(wrapped_record);
      }
    }
  }
  reporter->EndExperiment();
}

/// Cold-load path (load_quick): per (dataset, method) cell the oracle is
/// built once in-process, saved as a server snapshot to a scratch file,
/// and that file is then loaded twice into fresh indexes: once through the
/// classic owned-read stream path (every label byte re-read into owned
/// vectors) and once through the capability-picked mapped path
/// (LoadIndexSnapshotFile; mmap where available). Each arm reports its
/// load wall-ms as the cell value and the load's resident-set growth as
/// "rss_kb=" in the note — the mapped arm's near-zero pair is the point:
/// load cost drops to O(index pages touched). Before either arm is
/// reported, the built, owned, and mapped indexes must answer a seeded
/// query sample identically; one divergence fails both cells.
///
/// The xl graphs deliberately bypass RunCache: pinning a 10^7-edge graph
/// for the rest of a bench_all run would dwarf the cache's laptop-scale
/// working set, and no other experiment revisits the tier.

/// Returns freed heap pages to the OS so a load arm's rss_kb delta
/// measures that arm's own allocations. Without this the owned arm mostly
/// reuses pages the in-process build freed — still resident, so the delta
/// reads near zero — while the mapped arm (whose pages come from the file
/// mapping, never the heap) reports its full touch count. No-op off
/// glibc; the deltas are then reuse-skewed but the wall times stand.
void ReleaseFreedHeap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

void RunLoad(const ExperimentSpec& spec, const BenchConfig& config,
             Reporter* reporter, RunCache* /*cache*/) {
  const std::vector<DatasetSpec> datasets =
      FilterDatasets(DatasetsFor(spec), config);
  const std::vector<std::string> methods = MethodsFor(spec, config);
  std::vector<std::string> columns;
  for (const std::string& method : methods) {
    columns.push_back(method + "/owned");
    columns.push_back(method + "/mmap");
  }

  reporter->BeginExperiment(spec, columns, config);
  for (const std::string& wanted : config.datasets) {
    bool present = false;
    for (const DatasetSpec& dataset : datasets) {
      present |= dataset.name == wanted;
    }
    if (!present) {
      reporter->DatasetError(wanted,
                             "not part of this experiment's dataset rows");
    }
  }

  BuildBudget budget;
  budget.max_seconds = config.build_time_budget_seconds;
  budget.max_index_integers = config.build_index_budget_integers;
  BuildOptions build_options;
  build_options.threads = config.threads;
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string scratch_dir =
      tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp";

  for (const DatasetSpec& dataset : datasets) {
    const Digraph graph = MakeDataset(dataset);

    // Seeded query sample for the three-way identity gate. No ground
    // truth is needed — the gate checks that both load paths reproduce
    // the built index bit for bit, not that the index is correct (the
    // test suite owns that).
    std::vector<std::pair<Vertex, Vertex>> sample;
    sample.reserve(config.num_queries);
    uint64_t state = 0x9e3779b97f4a7c15ULL ^
                     (dataset.seed * 0xbf58476d1ce4e5b9ULL);
    const auto next_u64 = [&state]() {
      uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    const uint64_t n = graph.num_vertices();
    for (size_t i = 0; i < config.num_queries; ++i) {
      sample.emplace_back(static_cast<Vertex>(next_u64() % n),
                          static_cast<Vertex>(next_u64() % n));
    }
    const auto answers_of = [&sample](const ReachabilityIndex& index) {
      std::vector<char> answers;
      answers.reserve(sample.size());
      for (const auto& [u, v] : sample) {
        answers.push_back(index.Reachable(u, v) ? 1 : 0);
      }
      return answers;
    };

    for (const std::string& method : methods) {
      RunRecord owned_record;
      RunRecord mmap_record;
      const auto report_both = [&] {
        reporter->AddRecord(owned_record);
        reporter->AddRecord(mmap_record);
      };

      std::unique_ptr<ReachabilityOracle> oracle = MakeOracle(method);
      if (oracle == nullptr) {
        for (RunRecord* record : {&owned_record, &mmap_record}) {
          record->dataset = dataset.name;
          record->metric = MetricName(spec.metric);
          record->note = "unknown method";
        }
        owned_record.method = method + "/owned";
        mmap_record.method = method + "/mmap";
        report_both();
        continue;
      }
      oracle->set_budget(budget);
      BuildStats build_stats;
      const StatusOr<ReachabilityIndex> built = ReachabilityIndex::Build(
          graph, std::move(oracle), build_options, &build_stats);
      owned_record =
          StatsRecord(spec, dataset.name, method + "/owned", build_stats);
      mmap_record =
          StatsRecord(spec, dataset.name, method + "/mmap", build_stats);
      if (!built.ok()) {
        report_both();
        continue;
      }

      const std::string path = scratch_dir + "/reach_load_quick." +
                               dataset.name + "." + method + ".snapshot";
      const Status saved = server::SaveIndexSnapshot(
          path, method, graph.num_vertices(), graph.num_edges(),
          built->oracle());
      if (!saved.ok()) {
        for (RunRecord* record : {&owned_record, &mmap_record}) {
          record->ok = false;
          record->note = saved.ToString();
        }
        report_both();
        continue;
      }
      const std::vector<char> expected = answers_of(*built);

      // Owned arm in its own scope so its vectors are gone (and their RSS
      // mostly returned) before the mapped arm measures its growth.
      double owned_ms = 0;
      uint64_t owned_rss_kb = 0;
      Status owned_status = Status::OK();
      std::vector<char> owned_answers;
      {
        ReleaseFreedHeap();
        const uint64_t rss_before = CurrentRssKb();
        Timer timer;
        const auto owned_load = [&]() -> StatusOr<ReachabilityIndex> {
          std::ifstream in(path, std::ios::binary);
          if (!in) return Status::IOError("cannot open snapshot " + path);
          REACH_RETURN_IF_ERROR(server::ReadSnapshotHeader(
              in, method, graph.num_vertices(), graph.num_edges()));
          return ReachabilityIndex::Load(graph, MakeOracle(method), in);
        };
        const StatusOr<ReachabilityIndex> owned = owned_load();
        owned_ms = timer.ElapsedMillis();
        const uint64_t rss_after = CurrentRssKb();
        owned_rss_kb = rss_after > rss_before ? rss_after - rss_before : 0;
        if (owned.ok()) {
          owned_answers = answers_of(*owned);
        } else {
          owned_status = owned.status();
        }
      }

      bool mapped = false;
      ReleaseFreedHeap();
      const uint64_t rss_before = CurrentRssKb();
      Timer timer;
      const StatusOr<ReachabilityIndex> mapped_index =
          server::LoadIndexSnapshotFile(path, method, graph,
                                        MakeOracle(method),
                                        /*stats_out=*/nullptr, &mapped);
      const double mmap_ms = timer.ElapsedMillis();
      const uint64_t rss_after = CurrentRssKb();
      const uint64_t mmap_rss_kb =
          rss_after > rss_before ? rss_after - rss_before : 0;
      std::remove(path.c_str());

      if (!owned_status.ok() || !mapped_index.ok()) {
        owned_record.ok = owned_status.ok();
        owned_record.note =
            owned_status.ok() ? owned_record.note : owned_status.ToString();
        mmap_record.ok = mapped_index.ok();
        if (!mapped_index.ok()) {
          mmap_record.note = mapped_index.status().ToString();
        }
        report_both();
        continue;
      }
      if (owned_answers != expected ||
          answers_of(*mapped_index) != expected) {
        for (RunRecord* record : {&owned_record, &mmap_record}) {
          record->ok = false;
          record->note = "owned/mapped answers diverged from built index";
        }
        report_both();
        continue;
      }

      char note[64];
      owned_record.value = owned_ms;
      std::snprintf(note, sizeof(note), "rss_kb=%llu",
                    static_cast<unsigned long long>(owned_rss_kb));
      owned_record.note = note;
      mmap_record.value = mmap_ms;
      std::snprintf(note, sizeof(note), "rss_kb=%llu%s",
                    static_cast<unsigned long long>(mmap_rss_kb),
                    mapped ? "" : " (no mmap; heap fallback)");
      mmap_record.note = note;
      report_both();
    }
  }
  reporter->EndExperiment();
}

}  // namespace

const std::vector<ExperimentSpec>& ExperimentRegistry() {
  static const std::vector<ExperimentSpec> kRegistry = [] {
    std::vector<ExperimentSpec> specs;

    ExperimentSpec table1;
    table1.id = "table1";
    table1.title = "Table 1: real datasets (synthetic stand-ins)";
    table1.shape_note =
        "14 small graphs at original scale; 13 large graphs scaled down per "
        "DESIGN.md 3.1";
    table1.kind = ExperimentKind::kInventory;
    specs.push_back(table1);

    ExperimentSpec table2;
    table2.id = "table2";
    table2.title = "Table 2: query time (ms), equal workload, small graphs";
    table2.shape_note =
        "PT fastest; KR close; DL ~2x PT and faster than INT/PW8; "
        "DL ~2/3 of 2HOP; HL comparable to 2HOP; GL and PL slowest";
    table2.metric = Metric::kQueryMillis;
    table2.workload = WorkloadKind::kEqual;
    specs.push_back(table2);

    ExperimentSpec table3;
    table3.id = "table3";
    table3.title = "Table 3: query time (ms), random workload, small graphs";
    table3.shape_note =
        "oracles slightly slower than on the equal load (negative queries "
        "scan whole labels); PT still fastest; GL improves on "
        "mostly-negative load";
    table3.metric = Metric::kQueryMillis;
    table3.workload = WorkloadKind::kRandom;
    specs.push_back(table3);

    ExperimentSpec table4;
    table4.id = "table4";
    table4.title = "Table 4: construction time (ms), small graphs";
    table4.shape_note =
        "KR and 2HOP slowest (vertex-cover/set-cover + TC materialization); "
        "INT/PW8 fastest; DL ~20x faster than 2HOP and comparable to INT; "
        "HL ~5x faster than 2HOP; TF and PL between DL and HL";
    table4.metric = Metric::kConstructionMillis;
    // 2HOP on arxiv needs ~150s (the paper's own Table 4 reports 131.9s for
    // it); give the construction table enough budget to show that number.
    table4.budget_seconds_override = 200;
    specs.push_back(table4);

    ExperimentSpec table5;
    table5.id = "table5";
    table5.title =
        "Table 5: query time (ms per 100k), equal workload, large graphs";
    table5.shape_note =
        "reachability oracles (DL/HL/TF) fastest; TC compression (INT/PW8) "
        "slows as closures grow; PT/KR/2HOP fail on most large graphs; "
        "GL slowest on positive-heavy loads";
    table5.metric = Metric::kQueryMillis;
    table5.workload = WorkloadKind::kEqual;
    table5.large = true;
    specs.push_back(table5);

    ExperimentSpec table6;
    table6.id = "table6";
    table6.title =
        "Table 6: query time (ms per 100k), random workload, large graphs";
    table6.shape_note =
        "same ordering as Table 5; oracle scans full labels on negatives "
        "but stays fastest; GL's interval pruning helps on mostly-negative "
        "load";
    table6.metric = Metric::kQueryMillis;
    table6.workload = WorkloadKind::kRandom;
    table6.large = true;
    specs.push_back(table6);

    ExperimentSpec table7;
    table7.id = "table7";
    table7.title = "Table 7: construction time (ms), large graphs";
    table7.shape_note =
        "DL comparable to the fastest methods and finishes everywhere; HL "
        "finishes where 2HOP cannot; 2HOP/KR/PT hit the budget on most "
        "graphs; GL always finishes";
    table7.metric = Metric::kConstructionMillis;
    table7.large = true;
    specs.push_back(table7);

    ExperimentSpec fig3;
    fig3.id = "fig3";
    fig3.title = "Figure 3: index size (integers), small graphs";
    fig3.shape_note =
        "PW8/INT smallest; DL consistently <= 2HOP (the paper's surprise "
        "result, attributed to non-redundancy); HL comparable to 2HOP; "
        "DL and HL < TF; GL = 2*k*n by construction";
    fig3.metric = Metric::kIndexIntegers;
    specs.push_back(fig3);

    ExperimentSpec fig4;
    fig4.id = "fig4";
    fig4.title = "Figure 4: index size (integers), large graphs";
    fig4.shape_note =
        "DL smaller than HL and close to (or better than) 2HOP where 2HOP "
        "runs; PW8/INT small where closures compress; GL/KR larger; TF "
        "slightly above DL";
    fig4.metric = Metric::kIndexIntegers;
    fig4.large = true;
    specs.push_back(fig4);

    // Beyond the paper: serving-layer throughput. The oracle is built once
    // inside reach_serve's server and the whole workload travels as one
    // BATCH frame, so the cell measures the amortized-serving regime the
    // ROADMAP targets rather than in-process query latency.
    ExperimentSpec serve;
    serve.id = "serve_quick";
    serve.title =
        "Serve: batched loopback throughput (queries/s), small graphs";
    serve.shape_note =
        "one build amortizes across the batch and the server executes each "
        "frame grouped by source vertex (answers stay in arrival order); "
        "label-scan methods (DL/HL) sustain the highest QPS, index-free "
        "BFS pays per-query traversal and serializes behind the "
        "online-search query lock";
    serve.kind = ExperimentKind::kServe;
    serve.metric = Metric::kServeQps;
    serve.workload = WorkloadKind::kEqual;
    serve.num_queries_override = 10000;
    serve.dataset_subset = {"arxiv", "amaze", "kegg"};
    serve.default_methods = {"DL", "HL", "INT", "BFS"};
    specs.push_back(serve);

    // Beyond the paper: the in-process query hot path in ns/query, on the
    // three biggest small-tier graphs. This is the cell the sealed-CSR
    // label layout and the adaptive intersection kernel move; the quick
    // baseline archives it so a PR that regresses the hot path shows up
    // in the JSON diff.
    ExperimentSpec query_quick;
    query_quick.id = "query_quick";
    query_quick.title =
        "Query: ns/query, sealed labels, largest small graphs";
    query_quick.shape_note =
        "flat CSR labels + adaptive intersection: DL fastest (total-order "
        "keys make the O(1) range rejection fire on most negatives); HL/TF "
        "close behind; PL pays the full distance merge";
    query_quick.metric = Metric::kQueryNanos;
    query_quick.workload = WorkloadKind::kEqual;
    query_quick.dataset_subset = {"arxiv", "human", "p2p"};
    query_quick.default_methods = {"DL", "HL", "TF", "PL"};
    specs.push_back(query_quick);

    // The same cell with the workload stable-sorted by source vertex
    // before the timed loop — the in-process analogue of the server's
    // source-grouped BATCH execution. Compare against query_quick to see
    // what same-source adjacency is worth per method.
    ExperimentSpec query_grouped;
    query_grouped = query_quick;
    query_grouped.id = "query_grouped_quick";
    query_grouped.title =
        "Query: ns/query, workload grouped by source vertex";
    query_grouped.shape_note =
        "consecutive same-source queries reuse the cached Lout(u) span and "
        "its adaptive-dispatch branch history; the win concentrates in "
        "label-scan methods (DL/HL) and grows with label size";
    query_grouped.group_queries_by_source = true;
    specs.push_back(query_grouped);

    // Beyond the paper: the O'Reach-style O(1) pre-filter tier
    // (core/prefilter.h) across negative-heavy / mixed / positive-heavy
    // query mixes. Each method appears bare and wrapped; the wrapped
    // column's note carries the per-mix prefilter hit rate.
    ExperimentSpec prefilter;
    prefilter.id = "prefilter_quick";
    prefilter.title =
        "Prefilter: ns/query, bare vs wrapped oracle, per query mix";
    prefilter.shape_note =
        "on the negative-heavy mix the O(1) stages resolve >=80% of "
        "queries before the labels are touched and wrapped DL beats bare "
        "DL; the edge narrows as the positive fraction grows (positives "
        "fall through to the support stage and the fallback more often)";
    prefilter.kind = ExperimentKind::kPrefilter;
    prefilter.metric = Metric::kQueryNanos;
    prefilter.dataset_subset = {"arxiv", "human", "p2p"};
    prefilter.default_methods = {"DL", "HL"};
    specs.push_back(prefilter);

    // Beyond the paper: the cold-load path at the paper's original sizes
    // (the xl tier, 1.6M-16.1M edges). This is the cell the mmap-backed
    // zero-copy load path moves; the quick baseline archives it so a PR
    // that regresses the load path shows up in the JSON diff. Note the
    // quick budgets (5 s / 20M integers) cannot build the 10^7-edge
    // instances — those rows record honest DNFs under --quick, and the
    // full-budget run shows the headline gap on uniprotenc_100m_full.
    ExperimentSpec load;
    load.id = "load_quick";
    load.title =
        "Load: cold snapshot load (ms), owned read vs mmap, xl tier";
    load.shape_note =
        "the owned arm re-reads and re-validates every label byte into "
        "owned vectors, so it scales with index bytes; the mapped arm "
        "validates offsets and touches nothing else, staying O(index "
        "pages touched) with ~0 rss_kb growth — >=10x faster than owned "
        "read on the largest instance";
    load.kind = ExperimentKind::kLoad;
    load.metric = Metric::kLoadMillis;
    load.large = true;
    // DL on the 16M-vertex star forest needs more than the large tier's
    // default 25 s; the load arms themselves are sub-second.
    load.budget_seconds_override = 120;
    load.num_queries_override = 10000;
    load.default_methods = {"DL"};
    specs.push_back(load);

    return specs;
  }();
  return kRegistry;
}

std::vector<std::string> ExperimentIds() {
  std::vector<std::string> ids;
  for (const ExperimentSpec& spec : ExperimentRegistry()) {
    ids.push_back(spec.id);
  }
  return ids;
}

StatusOr<ExperimentSpec> FindExperiment(const std::string& id) {
  for (const ExperimentSpec& spec : ExperimentRegistry()) {
    if (spec.id == id) return spec;
  }
  return Status::NotFound("unknown experiment '" + id +
                          "'; known: " + JoinNames(ExperimentIds()));
}

BenchConfig DefaultConfigFor(const ExperimentSpec& spec) {
  BenchConfig config =
      spec.large ? LargeTableDefaults() : SmallTableDefaults();
  if (spec.budget_seconds_override > 0) {
    config.build_time_budget_seconds = spec.budget_seconds_override;
  }
  if (spec.num_queries_override > 0) {
    config.num_queries = spec.num_queries_override;
  }
  return config;
}

std::vector<DatasetSpec> DatasetsFor(const ExperimentSpec& spec) {
  const std::vector<DatasetSpec>& tier =
      spec.kind == ExperimentKind::kLoad
          ? XlDatasets()
          : (spec.large ? LargeDatasets() : SmallDatasets());
  if (spec.dataset_subset.empty()) return tier;
  std::vector<DatasetSpec> subset;
  for (const DatasetSpec& candidate : tier) {
    if (std::find(spec.dataset_subset.begin(), spec.dataset_subset.end(),
                  candidate.name) != spec.dataset_subset.end()) {
      subset.push_back(candidate);
    }
  }
  return subset;
}

bool ExperimentCoversDataset(const ExperimentSpec& spec,
                             const std::string& dataset) {
  if (spec.kind == ExperimentKind::kInventory) return true;
  for (const DatasetSpec& candidate : DatasetsFor(spec)) {
    if (candidate.name == dataset) return true;
  }
  return false;
}

RunCache::RunCache() = default;
RunCache::~RunCache() = default;

std::string RunCache::BuildKey(const std::string& dataset,
                               const std::string& method,
                               const BuildBudget& budget) {
  return dataset + "|" + method + "|" + std::to_string(budget.max_seconds) +
         "|" + std::to_string(budget.max_index_integers);
}

const BuildStats* RunCache::FindBuild(const std::string& dataset,
                                      const std::string& method,
                                      const BuildBudget& budget) const {
  const auto it = stats_.find(BuildKey(dataset, method, budget));
  return it == stats_.end() ? nullptr : &it->second;
}

void RunCache::InsertBuild(const std::string& dataset,
                           const std::string& method,
                           const BuildBudget& budget,
                           const BuildStats& stats) {
  stats_.emplace(BuildKey(dataset, method, budget), stats);
}

const ReachabilityOracle* RunCache::TruthOracle(const std::string& dataset,
                                                const Digraph& graph,
                                                int threads) {
  const auto it = truths_.find(dataset);
  if (it != truths_.end()) return it->second.get();
  BuildOptions options;
  options.threads = threads;
  auto truth = std::make_unique<DistributionLabelingOracle>();
  if (!truth->Build(graph, options).ok()) {
    truth.reset();  // Cache the failure too.
  }
  return truths_.emplace(dataset, std::move(truth)).first->second.get();
}

const Digraph& RunCache::Graph(const DatasetSpec& spec) {
  auto it = graphs_.find(spec.name);
  if (it == graphs_.end()) {
    it = graphs_.emplace(spec.name, MakeDataset(spec)).first;
  }
  return it->second;
}

void RunExperiment(const ExperimentSpec& spec, const BenchConfig& config,
                   Reporter* reporter, RunCache* cache) {
  switch (spec.kind) {
    case ExperimentKind::kInventory:
      RunInventory(spec, config, reporter, cache);
      return;
    case ExperimentKind::kServe:
      RunServe(spec, config, reporter, cache);
      return;
    case ExperimentKind::kPrefilter:
      RunPrefilter(spec, config, reporter, cache);
      return;
    case ExperimentKind::kLoad:
      RunLoad(spec, config, reporter, cache);
      return;
    case ExperimentKind::kTable:
      RunTable(spec, config, reporter, cache);
      return;
  }
}

int RunExperimentMain(const std::string& experiment_id, int argc,
                      char** argv) {
  const StatusOr<ExperimentSpec> spec = FindExperiment(experiment_id);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }
  const StatusOr<BenchOverrides> overrides =
      ParseArgs(argc, argv, /*allow_experiments=*/false);
  if (!overrides.ok()) {
    std::fprintf(stderr, "%s\n%s", overrides.status().message().c_str(),
                 UsageString(/*allow_experiments=*/false).c_str());
    return 2;
  }
  if (overrides->help) {
    std::printf("%s: %s\n%s", experiment_id.c_str(), spec->title.c_str(),
                UsageString(/*allow_experiments=*/false).c_str());
    return 0;
  }
  const BenchConfig config = ApplyOverrides(DefaultConfigFor(*spec),
                                            *overrides);
  for (const std::string& dataset : config.datasets) {
    if (!ExperimentCoversDataset(*spec, dataset)) {
      std::fprintf(stderr,
                   "dataset '%s' is not part of %s's tier; this run would "
                   "measure nothing for it\n",
                   dataset.c_str(), experiment_id.c_str());
      return 2;
    }
  }
  StatusOr<std::unique_ptr<Reporter>> reporter = MakeReporter(config);
  if (!reporter.ok()) {
    std::fprintf(stderr, "%s\n", reporter.status().ToString().c_str());
    return 2;
  }
  RunExperiment(*spec, config, reporter->get());
  (*reporter)->EndRun();
  return 0;
}

}  // namespace bench
}  // namespace reach
