// Reproduces Table 5: query time on the equal workload, 13 large datasets
// (scaled stand-ins). "--" = construction exceeded the laptop-scale budget,
// mirroring the paper's DNF entries.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig config = ParseArgs(argc, argv, LargeTableDefaults());
  RunTable(
      "Table 5: query time (ms per 100k), equal workload, large graphs",
      "reachability oracles (DL/HL/TF) fastest; TC compression (INT/PW8) "
      "slows as closures grow; PT/KR/2HOP fail on most large graphs; "
      "GL slowest on positive-heavy loads",
      reach::LargeDatasets(), Metric::kQueryMillis, WorkloadKind::kEqual,
      config);
  return 0;
}
