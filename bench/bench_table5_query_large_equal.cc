// Reproduces Table 5: query time, equal workload, large graphs. The experiment itself
// (datasets, metric, workload, caption) is defined once in the registry
// (bench/experiments.cc); this binary is a thin lookup kept for muscle
// memory — bench_all --experiments=table5 runs the same thing.

#include "bench/experiments.h"

int main(int argc, char** argv) {
  return reach::bench::RunExperimentMain("table5", argc, argv);
}
