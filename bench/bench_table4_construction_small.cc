// Reproduces Table 4: index construction time (ms), 14 small datasets.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig defaults = SmallTableDefaults();
  // 2HOP on arxiv needs ~150s (the paper's own Table 4 reports 131.9s for
  // it); give the construction table enough budget to show that number.
  defaults.build_time_budget_seconds = 200;
  BenchConfig config = ParseArgs(argc, argv, defaults);
  RunTable(
      "Table 4: construction time (ms), small graphs",
      "KR and 2HOP slowest (vertex-cover/set-cover + TC materialization); "
      "INT/PW8 fastest; DL ~20x faster than 2HOP and comparable to INT; "
      "HL ~5x faster than 2HOP; TF and PL between DL and HL",
      reach::SmallDatasets(), Metric::kConstructionMillis, WorkloadKind::kNone,
      config);
  return 0;
}
