// Reproduces Table 3: query time (ms) on the random workload (uniform pairs,
// mostly negative), 14 small datasets, all methods.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig config = ParseArgs(argc, argv, SmallTableDefaults());
  RunTable(
      "Table 3: query time (ms), random workload, small graphs",
      "oracles slightly slower than on the equal load (negative queries scan "
      "whole labels); PT still fastest; GL improves on mostly-negative load",
      reach::SmallDatasets(), Metric::kQueryMillis, WorkloadKind::kRandom,
      config);
  return 0;
}
