// Declarative experiment registry: every table and figure of the paper's
// Section 6 evaluation is one ExperimentSpec in a single table-of-tables.
// The legacy per-table binaries and the bench_all driver are both thin
// lookups into this registry, so an experiment is defined exactly once.

#ifndef REACH_BENCH_EXPERIMENTS_H_
#define REACH_BENCH_EXPERIMENTS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/oracle.h"
#include "datasets/registry.h"
#include "util/status.h"

namespace reach {
namespace bench {

class Reporter;

/// Memoizes work shared across the experiments of one bench_all run.
///
/// Build outcomes are keyed by (dataset, method, budget): several
/// experiments measure the same (dataset, method) cell under the same
/// budget — the two query workloads, construction time, and index size —
/// so without the cache bench_all pays for the same construction up to
/// four times, and a build that exceeds its time budget burns the full
/// budget on every repetition. A cached failure is never retried; a cached
/// success lets stats-only experiments (construction ms, index integers)
/// skip the rebuild entirely. Query experiments still rebuild successful
/// cells (they need a live oracle).
///
/// The per-dataset workload ground-truth oracle (an unbudgeted DL build)
/// is memoized too: the equal and random query tables of a tier would
/// otherwise each rebuild it for every dataset.
///
/// Memory: entries are kept for the whole run (experiments revisit a tier
/// as late as fig3/fig4, so eviction would reintroduce the rebuilds).
/// Retained state is bounded by the registry's laptop-scale datasets —
/// all 27 graphs plus all DL truth labelings total ~150 MB, a small
/// fraction of the transient peak of a single TC-based build.
class RunCache {
 public:
  RunCache();
  ~RunCache();

  const BuildStats* FindBuild(const std::string& dataset,
                              const std::string& method,
                              const BuildBudget& budget) const;
  void InsertBuild(const std::string& dataset, const std::string& method,
                   const BuildBudget& budget, const BuildStats& stats);

  /// The cached ground-truth oracle for `dataset`, built from `graph` on
  /// first use with `threads` construction workers (the labeling is
  /// thread-count-invariant, so later calls may pass any value). Returns
  /// nullptr when that build failed (also cached).
  const ReachabilityOracle* TruthOracle(const std::string& dataset,
                                        const Digraph& graph, int threads);

  /// The dataset's graph, generated on first use: every experiment of a
  /// tier iterates the same datasets, and the synthetic generators are not
  /// free at the large-tier sizes.
  const Digraph& Graph(const DatasetSpec& spec);

 private:
  static std::string BuildKey(const std::string& dataset,
                              const std::string& method,
                              const BuildBudget& budget);
  std::map<std::string, BuildStats> stats_;
  std::map<std::string, std::unique_ptr<ReachabilityOracle>> truths_;
  std::map<std::string, Digraph> graphs_;
};

enum class ExperimentKind {
  kInventory,  // Table 1: the dataset listing (no methods, no metric).
  kTable,      // datasets x methods under one metric.
  kServe,      // datasets x methods measured through a loopback server.
  kPrefilter,  // (dataset x query mix) rows; every method bare vs wrapped
               // in the O(1) pre-filter tier, with per-mix hit rates.
  kLoad,       // Cold snapshot-load wall time on the xl tier: per method,
               // an owned-read column vs an mmap column, with the load's
               // resident-set growth in the note.
};

/// One paper table/figure: what it runs and what the paper says it shows.
struct ExperimentSpec {
  std::string id;          // Registry key: "table2", "fig3", ...
  std::string title;       // Printed table caption.
  std::string shape_note;  // The paper's qualitative claim about the result.
  ExperimentKind kind = ExperimentKind::kTable;
  Metric metric = Metric::kQueryMillis;
  WorkloadKind workload = WorkloadKind::kNone;
  bool large = false;  // Dataset tier; selects the config defaults too.
  // > 0: replaces the tier's default build budget (Table 4 needs 200 s for
  // 2HOP on arxiv, mirroring the paper's own 131.9 s entry).
  double budget_seconds_override = 0;
  // > 0: replaces the tier's default query count (serve_quick ships a
  // fixed 10k-query batch by default).
  size_t num_queries_override = 0;
  // Non-empty: the experiment's rows are this subset of its tier instead
  // of the whole tier (keeps the serve throughput experiment cheap).
  std::vector<std::string> dataset_subset;
  // Non-empty: default method columns when --methods is not given
  // (otherwise the paper columns).
  std::vector<std::string> default_methods;
  // True: stable-sort the workload by source vertex before the timed loop —
  // the in-process analogue of the server's source-grouped BATCH execution
  // (consecutive same-source queries keep Lout(u) hot). query_grouped_quick
  // pairs with query_quick to put a number on the effect.
  bool group_queries_by_source = false;
};

/// All experiments, in paper order: table1..table7, fig3, fig4, then the
/// serving-layer experiments (serve_quick).
const std::vector<ExperimentSpec>& ExperimentRegistry();

/// The registry ids, in registry order.
std::vector<std::string> ExperimentIds();

/// Lookup by id; NotFound (listing the known ids) for unknown names.
StatusOr<ExperimentSpec> FindExperiment(const std::string& id);

/// Tier defaults plus the spec's overrides (e.g. Table 4's budget).
BenchConfig DefaultConfigFor(const ExperimentSpec& spec);

/// The dataset rows of the experiment (before --datasets filtering): the
/// spec's tier (kLoad experiments draw from the xl tier), narrowed to
/// dataset_subset when the spec names one.
std::vector<DatasetSpec> DatasetsFor(const ExperimentSpec& spec);

/// True when the experiment has a row for `dataset` (the inventory spans
/// both tiers). Used to fail fast when --datasets names only datasets of
/// the other tier — a run that would measure nothing must not exit 0.
bool ExperimentCoversDataset(const ExperimentSpec& spec,
                             const std::string& dataset);

/// Runs one experiment, streaming every measured cell into `reporter`.
/// `cache`, when non-null, is shared across experiments (see RunCache);
/// single-experiment runs gain little from it.
void RunExperiment(const ExperimentSpec& spec, const BenchConfig& config,
                   Reporter* reporter, RunCache* cache = nullptr);

/// Shared main() for the legacy one-table binaries: parses flags with the
/// experiment's defaults, builds the configured reporter, runs, returns the
/// process exit code (2 on flag errors, with usage printed to stderr).
int RunExperimentMain(const std::string& experiment_id, int argc,
                      char** argv);

}  // namespace bench
}  // namespace reach

#endif  // REACH_BENCH_EXPERIMENTS_H_
