// Shared configuration and command-line parsing for the paper-reproduction
// benchmarks. Experiment definitions live in bench/experiments.h (one
// ExperimentSpec per table/figure of Section 6); result presentation lives
// in bench/reporter.h (text / CSV / JSON). This header owns what is common
// to both: the run configuration, its defaults per dataset tier, and the
// strictly-validated flag parser every bench binary shares.

#ifndef REACH_BENCH_HARNESS_H_
#define REACH_BENCH_HARNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace reach {
namespace bench {

/// What a table cell measures.
enum class Metric {
  kQueryMillis,         // Total ms normalized to 100,000 queries.
  kQueryNanos,          // ns per query over repeated workload passes
                        // (query_quick; the sealed-label hot path).
  kConstructionMillis,  // Index build wall time.
  kIndexIntegers,       // Stored integers (Figures 3/4).
  kServeQps,            // Batched loopback queries/second (serve_quick).
  kLoadMillis,          // Cold snapshot-load wall time (load_quick; the
                        // owned-read vs mmap arms of the load path).
};

/// Which workload drives kQueryMillis.
enum class WorkloadKind { kEqual, kRandom, kNone };

/// Stable machine-readable metric name ("query_ms_per_100k", ...).
std::string MetricName(Metric metric);

/// Stable machine-readable workload name ("equal", "random", "none").
std::string WorkloadName(WorkloadKind kind);

/// "a, b, c" — for known-name listings in error/usage messages.
std::string JoinNames(const std::vector<std::string>& names);

/// Fully-resolved run configuration for one experiment.
struct BenchConfig {
  size_t num_queries = 100000;  // The paper times 100,000 queries.
  double build_time_budget_seconds = 120;
  uint64_t build_index_budget_integers = 0;  // 0 = unlimited (small tables).
  std::vector<std::string> datasets;         // Empty = all in the table.
  std::vector<std::string> methods;          // Empty = paper columns.
  bool quick = false;
  // Construction threads (BuildOptions::threads): 0 = default (REACH_THREADS
  // env var, else hardware concurrency); affects build wall time only —
  // index bytes and query answers are thread-count-invariant.
  int threads = 0;
  std::string format = "text";  // "text" | "csv" | "json".
  std::string out_path;         // Empty = stdout.
};

/// What the command line explicitly asked for, before the per-experiment
/// defaults are known. bench_all spans experiments with different tier
/// defaults, so parsing and default-resolution are separate steps:
/// ParseArgs() -> one BenchOverrides; ApplyOverrides() per experiment.
struct BenchOverrides {
  bool quick = false;
  bool help = false;
  std::optional<size_t> num_queries;
  std::optional<double> budget_seconds;
  std::optional<int> threads;
  std::vector<std::string> datasets;
  std::vector<std::string> methods;
  std::vector<std::string> experiments;  // bench_all only.
  std::string format = "text";
  std::string out_path;
};

/// Parses and validates flags:
///   --quick              smoke mode (few queries, tight budgets)
///   --queries=N          queries per workload (positive integer)
///   --datasets=a,b,c     restrict to named datasets (validated)
///   --methods=DL,HL      restrict to named methods (validated)
///   --budget-seconds=S   build time budget (non-negative; 0 = unlimited)
///   --threads=N          construction worker threads (positive integer)
///   --format=FMT         text (default), csv, or json
///   --out=PATH           write the report to PATH instead of stdout
///   --experiments=a,b    (bench_all only) restrict to named experiments
///   --help, -h           sets .help; caller prints UsageString()
/// Help is a first-class path: when --help/-h appears anywhere on the
/// command line, ParseArgs returns immediately with only .help set — other
/// flags are not validated, so `tool --queries=bogus --help` still prints
/// usage and exits 0.
/// Otherwise unknown flags, malformed numbers, and unknown
/// dataset/method/experiment names yield InvalidArgument with a message
/// listing the valid spellings — a typo must never silently produce an
/// empty or partial table.
StatusOr<BenchOverrides> ParseArgs(int argc, char** argv,
                                   bool allow_experiments);

/// Resolves `overrides` against an experiment's defaults: tier defaults,
/// then --quick adjustments, then explicit flags (strongest).
BenchConfig ApplyOverrides(const BenchConfig& defaults,
                           const BenchOverrides& overrides);

/// Flag reference for error messages / --help.
std::string UsageString(bool allow_experiments);

/// Shared preamble for the ablation binaries, whose dataset/method matrix
/// is fixed and whose output is always a text table on stdout: only
/// --quick, --queries=N, and --help are meaningful, and every flag that
/// would otherwise be silently ignored (--datasets, --methods,
/// --budget-seconds, --format, --out) is rejected instead. Returns the
/// resolved config, or nullopt after printing help/error — in which case
/// the process should return `*exit_code`.
std::optional<BenchConfig> ParseAblationArgs(int argc, char** argv,
                                             int* exit_code);

/// Default configs for small-graph and large-graph tables.
BenchConfig SmallTableDefaults();
BenchConfig LargeTableDefaults();

}  // namespace bench
}  // namespace reach

#endif  // REACH_BENCH_HARNESS_H_
