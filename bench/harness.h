// Table harness for the paper-reproduction benchmarks: one binary per table
// or figure of Section 6 (see DESIGN.md's per-experiment index). Each run
// prints the paper's rows (datasets) x columns (methods); "--" marks a
// method that exceeded its construction budget, mirroring the paper's
// did-not-finish entries.

#ifndef REACH_BENCH_HARNESS_H_
#define REACH_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "datasets/registry.h"

namespace reach {
namespace bench {

/// Shared run configuration; tweakable from the command line:
///   --quick            smoke mode (few queries, tight budgets)
///   --queries=N        queries per workload
///   --datasets=a,b,c   restrict to named datasets
///   --methods=DL,HL    restrict to named methods
struct BenchConfig {
  size_t num_queries = 100000;  // The paper times 100,000 queries.
  double build_time_budget_seconds = 120;
  uint64_t build_index_budget_integers = 0;  // 0 = unlimited (small tables).
  std::vector<std::string> datasets;         // Empty = all in the table.
  std::vector<std::string> methods;          // Empty = paper columns.
  bool quick = false;
};

/// Parses command-line flags into a config preloaded with table defaults.
BenchConfig ParseArgs(int argc, char** argv, const BenchConfig& defaults);

/// What a table cell measures.
enum class Metric {
  kQueryMillis,         // Total ms for the configured query count.
  kConstructionMillis,  // Index build wall time.
  kIndexIntegers,       // Stored integers (Figures 3/4).
};

/// Which workload drives kQueryMillis.
enum class WorkloadKind { kEqual, kRandom, kNone };

/// Runs one full table: datasets x methods under one metric, printing as it
/// goes. `title` and `shape_note` reproduce the table caption and the
/// qualitative claim the paper makes about it.
void RunTable(const std::string& title, const std::string& shape_note,
              const std::vector<DatasetSpec>& datasets, Metric metric,
              WorkloadKind workload, const BenchConfig& config);

/// Prints the Table 1 inventory (paper sizes, our scales, actual sizes).
void RunDatasetInventory(const std::vector<DatasetSpec>& small,
                         const std::vector<DatasetSpec>& large,
                         const BenchConfig& config);

/// Default configs for small-graph and large-graph tables.
BenchConfig SmallTableDefaults();
BenchConfig LargeTableDefaults();

}  // namespace bench
}  // namespace reach

#endif  // REACH_BENCH_HARNESS_H_
