// Reproduces Table 2: query time (ms) on the equal workload (~50% positive),
// 14 small datasets, all methods.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig config = ParseArgs(argc, argv, SmallTableDefaults());
  RunTable(
      "Table 2: query time (ms), equal workload, small graphs",
      "PT fastest; KR close; DL ~2x PT and faster than INT/PW8; "
      "DL ~2/3 of 2HOP; HL comparable to 2HOP; GL and PL slowest",
      reach::SmallDatasets(), Metric::kQueryMillis, WorkloadKind::kEqual,
      config);
  return 0;
}
