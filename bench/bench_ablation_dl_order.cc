// Ablation for Section 5.2's "Vertex Order" design choice: DL's label size
// and build time under the paper's degree-product rank versus random,
// topological, and adversarial (ascending-rank) orders. The rank function is
// what makes DL's labeling smaller than set-cover 2HOP.

#include <cstdio>
#include <optional>

#include "bench/harness.h"
#include "datasets/registry.h"
#include "core/distribution_labeling.h"
#include "query/workload.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace reach;
  using namespace reach::bench;
  int exit_code = 0;
  const std::optional<BenchConfig> parsed =
      ParseAblationArgs(argc, argv, &exit_code);
  if (!parsed) return exit_code;
  const BenchConfig& config = *parsed;

  std::printf("== Ablation: DL vertex-order policy ==\n");
  std::printf(
      "paper_shape: the (|Nout|+1)*(|Nin|+1) rank is the paper's 'good "
      "candidate': it wins clearly on hub/citation graphs (arxiv, amaze); "
      "on pure forests a random order can tie or edge it out\n\n");
  std::printf("%-14s %-24s %14s %12s %14s\n", "dataset", "order",
              "label integers", "build ms", "query ms/100k");

  const DistributionOrder orders[] = {
      DistributionOrder::kDegreeProduct, DistributionOrder::kRandom,
      DistributionOrder::kTopological,
      DistributionOrder::kReverseDegreeProduct};

  for (const char* name : {"arxiv", "amaze", "human", "citeseer"}) {
    auto spec = FindDataset(name);
    if (!spec.ok()) continue;
    Digraph g = MakeDataset(*spec);

    // One workload per dataset, shared by all orders.
    DistributionLabelingOracle truth;
    if (!truth.Build(g).ok()) continue;
    WorkloadOptions w_options;
    w_options.num_queries = std::min<size_t>(config.num_queries, 50000);
    Workload workload = MakeEqualWorkload(g, truth, w_options);

    for (DistributionOrder order : orders) {
      DistributionOptions options;
      options.order = order;
      DistributionLabelingOracle oracle(options);
      if (!oracle.Build(g).ok()) {
        std::printf("%-14s %-24s %14s\n", name,
                    DistributionOrderName(order).c_str(), "--");
        continue;
      }
      const double build_ms = oracle.build_stats().build_millis;
      Timer query_timer;
      size_t hits = 0;
      for (const Query& q : workload.queries) {
        hits += oracle.Reachable(q.from, q.to);
      }
      const double query_ms = query_timer.ElapsedMillis() * 100000.0 /
                              workload.queries.size();
      // Consuming `hits` keeps the query loop alive under -O2.
      std::printf("%-14s %-24s %14llu %12.1f %14.1f%s\n", name,
                  DistributionOrderName(order).c_str(),
                  static_cast<unsigned long long>(oracle.IndexSizeIntegers()),
                  build_ms, query_ms, hits == SIZE_MAX ? "!" : "");
    }
  }
  std::printf("\n");
  return 0;
}
