// Reproduces Table 1: the dataset inventory (|V|, |E| per graph).

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig config = ParseArgs(argc, argv, SmallTableDefaults());
  RunDatasetInventory(reach::SmallDatasets(), reach::LargeDatasets(), config);
  return 0;
}
