// Ablation for Section 4's design choices in Hierarchical Labeling: the
// locality threshold epsilon (2 = the paper's default backbone; 1 = the
// TF-label special case) and the core-graph size threshold at which the
// recursive decomposition stops.

#include <cstdio>
#include <optional>

#include "bench/harness.h"
#include "datasets/registry.h"
#include "core/hierarchical_labeling.h"
#include "query/workload.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace reach;
  using namespace reach::bench;
  int exit_code = 0;
  const std::optional<BenchConfig> parsed =
      ParseAblationArgs(argc, argv, &exit_code);
  if (!parsed) return exit_code;
  const BenchConfig& config = *parsed;

  std::printf("== Ablation: HL epsilon and core threshold ==\n");
  std::printf(
      "paper_shape: eps=2 shrinks the backbone faster per level than eps=1 "
      "(TF), giving fewer levels for the same core threshold; label sizes "
      "favor eps=2 on hub/citation graphs and are close on forests. The "
      "core threshold trades decomposition depth against core-labeling "
      "work with little effect on size\n\n");
  std::printf("%-12s %4s %10s %8s %14s %12s %14s\n", "dataset", "eps",
              "core_thr", "levels", "label ints", "build ms",
              "query ms/100k");

  struct Config {
    int epsilon;
    size_t core_threshold;
  };
  const Config configs[] = {{2, 4096}, {2, 512}, {2, 64}, {1, 4096},
                            {1, 512}};

  for (const char* name : {"arxiv", "human", "xmark", "citeseer"}) {
    auto spec = FindDataset(name);
    if (!spec.ok()) continue;
    Digraph g = MakeDataset(*spec);

    HierarchicalLabelingOracle truth;  // Workload ground truth.
    if (!truth.Build(g).ok()) continue;
    WorkloadOptions w_options;
    w_options.num_queries = std::min<size_t>(config.num_queries, 50000);
    Workload workload = MakeEqualWorkload(g, truth, w_options);

    for (const Config& c : configs) {
      HierarchicalOptions options;
      options.hierarchy.backbone.epsilon = c.epsilon;
      options.hierarchy.core_size_threshold = c.core_threshold;
      HierarchicalLabelingOracle oracle(options);
      if (!oracle.Build(g).ok()) {
        std::printf("%-12s %4d %10zu %8s\n", name, c.epsilon,
                    c.core_threshold, "--");
        continue;
      }
      const double build_ms = oracle.build_stats().build_millis;
      Timer query_timer;
      size_t hits = 0;
      for (const Query& q : workload.queries) {
        hits += oracle.Reachable(q.from, q.to);
      }
      const double query_ms = query_timer.ElapsedMillis() * 100000.0 /
                              workload.queries.size();
      // Consuming `hits` keeps the query loop alive under -O2.
      std::printf("%-12s %4d %10zu %8zu %14llu %12.1f %14.1f%s\n", name,
                  c.epsilon, c.core_threshold,
                  oracle.hierarchy().num_levels(),
                  static_cast<unsigned long long>(oracle.IndexSizeIntegers()),
                  build_ms, query_ms, hits == SIZE_MAX ? "!" : "");
    }
  }
  std::printf("\n");
  return 0;
}
