// bench_all: runs any subset of the registered paper experiments
// (tables 1-7, figures 3-4) in one process with one report.
//
//   bench_all                                  # every experiment, text
//   bench_all --experiments=table5,fig3        # a subset
//   bench_all --quick --format=json --out=bench.json   # CI baseline
//
// CSV/JSON runs emit one document covering all selected experiments, so a
// run can be archived and diffed against a previous PR's artifact.

#include <cstdio>
#include <vector>

#include "bench/experiments.h"
#include "bench/harness.h"
#include "bench/reporter.h"

int main(int argc, char** argv) {
  using namespace reach;
  using namespace reach::bench;

  const StatusOr<BenchOverrides> overrides =
      ParseArgs(argc, argv, /*allow_experiments=*/true);
  if (!overrides.ok()) {
    std::fprintf(stderr, "%s\n%s", overrides.status().message().c_str(),
                 UsageString(/*allow_experiments=*/true).c_str());
    return 2;
  }
  if (overrides->help) {
    std::printf("bench_all: run registered paper experiments\n%s",
                UsageString(/*allow_experiments=*/true).c_str());
    return 0;
  }

  std::vector<ExperimentSpec> selected;
  if (overrides->experiments.empty()) {
    selected = ExperimentRegistry();
  } else {
    for (const std::string& id : overrides->experiments) {
      // The selection is a set: a repeated id must not run (and report)
      // the experiment twice.
      bool already = false;
      for (const ExperimentSpec& spec : selected) already |= spec.id == id;
      if (already) continue;
      const StatusOr<ExperimentSpec> spec = FindExperiment(id);
      if (!spec.ok()) {  // Unreachable: ParseArgs validates ids.
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      selected.push_back(*spec);
    }
  }

  // A requested dataset must have a row in at least one selected
  // experiment; tier-mismatched experiments in between merely note it
  // (DatasetError), but a dataset no experiment covers means the user's
  // run would measure nothing for it — fail instead of exiting 0.
  for (const std::string& dataset : overrides->datasets) {
    bool covered = false;
    for (const ExperimentSpec& spec : selected) {
      covered |= ExperimentCoversDataset(spec, dataset);
    }
    if (!covered) {
      std::fprintf(stderr,
                   "dataset '%s' is not part of any selected experiment\n",
                   dataset.c_str());
      return 2;
    }
  }

  // The reporter is format/out-scoped, not experiment-scoped: build it from
  // any one resolved config (format and out_path are override-determined).
  const BenchConfig reporter_config =
      ApplyOverrides(DefaultConfigFor(selected.front()), *overrides);
  StatusOr<std::unique_ptr<Reporter>> reporter =
      MakeReporter(reporter_config);
  if (!reporter.ok()) {
    std::fprintf(stderr, "%s\n", reporter.status().ToString().c_str());
    return 2;
  }

  // Shared across experiments: several tables measure the same (dataset,
  // method) cell under the same budget, and a doomed build should burn its
  // budget once, not once per table.
  RunCache cache;
  for (const ExperimentSpec& spec : selected) {
    const BenchConfig config = ApplyOverrides(DefaultConfigFor(spec),
                                              *overrides);
    RunExperiment(spec, config, reporter->get(), &cache);
  }
  (*reporter)->EndRun();
  return 0;
}
