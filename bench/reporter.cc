#include "bench/reporter.h"

#include <cinttypes>
#include <utility>

namespace reach {
namespace bench {

namespace {

void PrintRule(std::FILE* out, size_t width) {
  for (size_t i = 0; i < width; ++i) std::fputc('-', out);
  std::fputc('\n', out);
}

}  // namespace

// ---------------------------------------------------------------------------
// TextTableReporter: byte-compatible with the pre-registry harness output.
// ---------------------------------------------------------------------------

void TextTableReporter::BeginExperiment(const ExperimentSpec& spec,
                                        const std::vector<std::string>& methods,
                                        const BenchConfig& config) {
  metric_ = spec.metric;
  open_row_dataset_.clear();
  inventory_rows_ = 0;
  inventory_rule_printed_ = false;

  std::fprintf(out_, "== %s ==\n", spec.title.c_str());
  std::fprintf(out_, "paper_shape: %s\n", spec.shape_note.c_str());
  if (spec.kind == ExperimentKind::kInventory) {
    std::fputc('\n', out_);
    std::fprintf(out_, "%-16s %6s %12s %12s %12s %12s %-14s\n", "dataset",
                 "scale", "paper |V|", "paper |E|", "ours |V|", "ours |E|",
                 "family");
    PrintRule(out_, 92);
    return;
  }

  if (spec.metric == Metric::kQueryMillis) {
    std::fprintf(out_,
                 "metric: total ms per 100,000 queries (measured with %zu)\n",
                 config.num_queries);
  } else if (spec.metric == Metric::kQueryNanos) {
    std::fprintf(out_,
                 "metric: ns per query (repeated passes over a %zu-query "
                 "workload)\n",
                 config.num_queries);
  } else if (spec.metric == Metric::kConstructionMillis) {
    std::fprintf(out_, "metric: index construction ms\n");
  } else if (spec.metric == Metric::kServeQps) {
    std::fprintf(out_,
                 "metric: loopback queries/second, one %zu-query BATCH "
                 "frame\n",
                 config.num_queries);
  } else {
    std::fprintf(out_, "metric: index size in number of stored integers\n");
  }
  std::fprintf(out_, "budget: %.0fs build time%s; '--' = did not finish\n\n",
               config.build_time_budget_seconds,
               config.build_index_budget_integers > 0 ? ", capped index" : "");

  std::fprintf(out_, "%-16s", "dataset");
  for (const std::string& m : methods) std::fprintf(out_, "%12s", m.c_str());
  std::fputc('\n', out_);
  PrintRule(out_, 16 + 12 * methods.size());
}

void TextTableReporter::EndOpenRow() {
  if (!open_row_dataset_.empty()) {
    std::fputc('\n', out_);
    open_row_dataset_.clear();
  }
}

void TextTableReporter::AddRecord(const RunRecord& record) {
  if (record.dataset != open_row_dataset_) {
    EndOpenRow();
    std::fprintf(out_, "%-16s", record.dataset.c_str());
    open_row_dataset_ = record.dataset;
  }
  if (!record.ok) {
    std::fprintf(out_, "%12s", "--");
  } else {
    switch (metric_) {
      case Metric::kConstructionMillis:
      case Metric::kQueryMillis:
      case Metric::kQueryNanos:
      case Metric::kLoadMillis:
        std::fprintf(out_, "%12.1f", record.value);
        break;
      case Metric::kServeQps:
        std::fprintf(out_, "%12.0f", record.value);
        break;
      case Metric::kIndexIntegers:
        std::fprintf(out_, "%12" PRIu64,
                     static_cast<uint64_t>(record.value));
        break;
    }
  }
  std::fflush(out_);
}

void TextTableReporter::AddDatasetInfo(const DatasetInfo& info) {
  if (info.large && !inventory_rule_printed_) {
    PrintRule(out_, 92);
    inventory_rule_printed_ = true;
  }
  std::fprintf(out_, "%-16s %6.3f %12zu %12zu %12zu %12zu %-14s\n",
               info.name.c_str(), info.scale, info.paper_vertices,
               info.paper_edges, info.vertices, info.edges,
               info.family.c_str());
  ++inventory_rows_;
}

void TextTableReporter::DatasetError(const std::string& dataset,
                                     const std::string& error) {
  EndOpenRow();
  std::fprintf(out_, "%-16s  <%s>\n", dataset.c_str(), error.c_str());
}

void TextTableReporter::EndExperiment() {
  EndOpenRow();
  if (inventory_rows_ > 0 && !inventory_rule_printed_) {
    // Legacy inventory output always drew the small/large separator, even
    // when filtering left no large rows.
    PrintRule(out_, 92);
    inventory_rule_printed_ = true;
  }
  std::fputc('\n', out_);
  std::fflush(out_);
}

void TextTableReporter::EndRun() { std::fflush(out_); }

// ---------------------------------------------------------------------------
// CsvReporter
// ---------------------------------------------------------------------------

std::string CsvReporter::EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvReporter::BeginExperiment(const ExperimentSpec& spec,
                                  const std::vector<std::string>& methods,
                                  const BenchConfig& config) {
  (void)methods;
  (void)config;
  if (buffer_.empty()) {
    buffer_ =
        "experiment,dataset,method,metric,value,budget_exceeded,build_ms,"
        "index_integers,index_bytes,threads,tier,note\n";
  }
  experiment_id_ = spec.id;
  experiment_tier_ = spec.kind == ExperimentKind::kInventory
                         ? ""  // Per-dataset tier instead (AddDatasetInfo).
                         : (spec.large ? "large" : "small");
}

void CsvReporter::Row(const std::string& dataset, const std::string& method,
                      const std::string& metric, const std::string& value,
                      bool budget_exceeded, const RunRecord* stats,
                      const std::string& tier, const std::string& note) {
  buffer_ += EscapeField(experiment_id_);
  buffer_ += ',';
  buffer_ += EscapeField(dataset);
  buffer_ += ',';
  buffer_ += EscapeField(method);
  buffer_ += ',';
  buffer_ += EscapeField(metric);
  buffer_ += ',';
  buffer_ += value;
  buffer_ += ',';
  buffer_ += budget_exceeded ? "true" : "false";
  buffer_ += ',';
  if (stats != nullptr) {
    buffer_ += JsonNumber(stats->build_ms);
    buffer_ += ',';
    buffer_ += std::to_string(stats->index_integers);
    buffer_ += ',';
    buffer_ += std::to_string(stats->index_bytes);
    buffer_ += ',';
    buffer_ += std::to_string(stats->threads);
  } else {
    buffer_ += ",,,";
  }
  buffer_ += ',';
  buffer_ += tier;
  buffer_ += ',';
  buffer_ += EscapeField(note);
  buffer_ += '\n';
}

void CsvReporter::AddRecord(const RunRecord& record) {
  // Budget-exceeded ("--") cells are encoded explicitly: empty value,
  // budget_exceeded=true, with the oracle's reason in `note`.
  Row(record.dataset, record.method, record.metric,
      record.ok ? JsonNumber(record.value) : "", record.budget_exceeded,
      &record, experiment_tier_, record.note);
}

void CsvReporter::AddDatasetInfo(const DatasetInfo& info) {
  const std::string tier = info.large ? "large" : "small";
  Row(info.name, "", "scale", JsonNumber(info.scale), false, nullptr, tier,
      info.family);
  Row(info.name, "", "vertices", std::to_string(info.vertices), false,
      nullptr, tier, info.family);
  Row(info.name, "", "edges", std::to_string(info.edges), false, nullptr,
      tier, info.family);
  Row(info.name, "", "paper_vertices", std::to_string(info.paper_vertices),
      false, nullptr, tier, info.family);
  Row(info.name, "", "paper_edges", std::to_string(info.paper_edges), false,
      nullptr, tier, info.family);
}

void CsvReporter::DatasetError(const std::string& dataset,
                               const std::string& error) {
  Row(dataset, "", "error", "", false, nullptr, experiment_tier_, error);
}

void CsvReporter::EndRun() {
  std::fwrite(buffer_.data(), 1, buffer_.size(), out_);
  std::fflush(out_);
}

// ---------------------------------------------------------------------------
// JsonReporter
// ---------------------------------------------------------------------------

JsonReporter::JsonReporter(std::FILE* out)
    : out_(out), writer_(&buffer_) {
  writer_.BeginObject();
  writer_.KeyUint("schema_version", 2);
  writer_.Key("experiments");
  writer_.BeginArray();
}

void JsonReporter::BeginExperiment(const ExperimentSpec& spec,
                                   const std::vector<std::string>& methods,
                                   const BenchConfig& config) {
  spec_ = spec;
  methods_ = methods;
  config_ = config;
  records_.clear();
  infos_.clear();
  errors_.clear();
}

void JsonReporter::AddRecord(const RunRecord& record) {
  records_.push_back(record);
}

void JsonReporter::AddDatasetInfo(const DatasetInfo& info) {
  infos_.push_back(info);
}

void JsonReporter::DatasetError(const std::string& dataset,
                                const std::string& error) {
  errors_.emplace_back(dataset, error);
}

void JsonReporter::EndExperiment() {
  writer_.BeginObject();
  writer_.KeyString("id", spec_.id);
  writer_.KeyString("title", spec_.title);
  writer_.KeyString("kind",
                    spec_.kind == ExperimentKind::kInventory   ? "inventory"
                    : spec_.kind == ExperimentKind::kServe     ? "serve"
                    : spec_.kind == ExperimentKind::kPrefilter ? "prefilter"
                                                               : "table");
  if (spec_.kind != ExperimentKind::kInventory) {
    writer_.KeyString("metric", MetricName(spec_.metric));
    writer_.KeyString("workload", WorkloadName(spec_.workload));
    if (spec_.metric == Metric::kQueryMillis ||
        spec_.metric == Metric::kQueryNanos ||
        spec_.metric == Metric::kServeQps) {
      writer_.KeyUint("num_queries", config_.num_queries);
    }
    writer_.KeyDouble("budget_seconds", config_.build_time_budget_seconds);
    writer_.KeyUint("budget_index_integers",
                    config_.build_index_budget_integers);
    writer_.KeyBool("quick", config_.quick);
    writer_.Key("methods");
    writer_.BeginArray();
    for (const std::string& m : methods_) writer_.String(m);
    writer_.EndArray();
  }
  if (!infos_.empty()) {
    writer_.Key("datasets");
    writer_.BeginArray();
    for (const DatasetInfo& info : infos_) {
      writer_.BeginObject();
      writer_.KeyString("dataset", info.name);
      writer_.KeyString("tier", info.large ? "large" : "small");
      writer_.KeyString("family", info.family);
      writer_.KeyDouble("scale", info.scale);
      writer_.KeyUint("paper_vertices", info.paper_vertices);
      writer_.KeyUint("paper_edges", info.paper_edges);
      writer_.KeyUint("vertices", info.vertices);
      writer_.KeyUint("edges", info.edges);
      writer_.EndObject();
    }
    writer_.EndArray();
  }
  if (!errors_.empty()) {
    writer_.Key("dataset_errors");
    writer_.BeginArray();
    for (const auto& [dataset, error] : errors_) {
      writer_.BeginObject();
      writer_.KeyString("dataset", dataset);
      writer_.KeyString("error", error);
      writer_.EndObject();
    }
    writer_.EndArray();
  }
  writer_.Key("records");
  writer_.BeginArray();
  for (const RunRecord& r : records_) {
    writer_.BeginObject();
    writer_.KeyString("dataset", r.dataset);
    writer_.KeyString("method", r.method);
    writer_.KeyString("metric", r.metric);
    writer_.Key("value");
    // Budget-exceeded ("--") cells carry no value: encoded as null plus
    // budget_exceeded=true so a diff can tell "slow" from "did not finish".
    if (r.ok) {
      writer_.Double(r.value);
    } else {
      writer_.Null();
    }
    writer_.KeyDouble("build_ms", r.build_ms);
    writer_.KeyUint("index_integers", r.index_integers);
    writer_.KeyUint("index_bytes", r.index_bytes);
    writer_.KeyUint("threads", static_cast<uint64_t>(r.threads));
    writer_.KeyBool("budget_exceeded", r.budget_exceeded);
    if (!r.note.empty()) writer_.KeyString("note", r.note);
    writer_.EndObject();
  }
  writer_.EndArray();
  writer_.EndObject();
}

void JsonReporter::EndRun() {
  writer_.EndArray();
  writer_.EndObject();
  buffer_.push_back('\n');
  std::fwrite(buffer_.data(), 1, buffer_.size(), out_);
  std::fflush(out_);
}

// ---------------------------------------------------------------------------
// MakeReporter
// ---------------------------------------------------------------------------

namespace {

/// Owns the output FILE* (when not stdout) on behalf of the wrapped
/// reporter; closes it after EndRun flushes.
class FileOwningReporter : public Reporter {
 public:
  FileOwningReporter(std::unique_ptr<Reporter> inner, std::FILE* file)
      : inner_(std::move(inner)), file_(file) {}
  ~FileOwningReporter() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void BeginExperiment(const ExperimentSpec& spec,
                       const std::vector<std::string>& methods,
                       const BenchConfig& config) override {
    inner_->BeginExperiment(spec, methods, config);
  }
  void AddRecord(const RunRecord& record) override {
    inner_->AddRecord(record);
  }
  void AddDatasetInfo(const DatasetInfo& info) override {
    inner_->AddDatasetInfo(info);
  }
  void DatasetError(const std::string& dataset,
                    const std::string& error) override {
    inner_->DatasetError(dataset, error);
  }
  void EndExperiment() override { inner_->EndExperiment(); }
  void EndRun() override {
    inner_->EndRun();
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  std::unique_ptr<Reporter> inner_;
  std::FILE* file_;
};

}  // namespace

StatusOr<std::unique_ptr<Reporter>> MakeReporter(const BenchConfig& config) {
  std::FILE* out = stdout;
  std::FILE* owned = nullptr;
  if (!config.out_path.empty()) {
    owned = std::fopen(config.out_path.c_str(), "w");
    if (owned == nullptr) {
      return Status::IOError("cannot open --out path '" + config.out_path +
                             "' for writing");
    }
    out = owned;
  }

  std::unique_ptr<Reporter> reporter;
  if (config.format == "csv") {
    reporter = std::make_unique<CsvReporter>(out);
  } else if (config.format == "json") {
    reporter = std::make_unique<JsonReporter>(out);
  } else {
    reporter = std::make_unique<TextTableReporter>(out);
  }
  if (owned != nullptr) {
    reporter = std::make_unique<FileOwningReporter>(std::move(reporter),
                                                    owned);
  }
  return reporter;
}

}  // namespace bench
}  // namespace reach
