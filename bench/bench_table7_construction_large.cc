// Reproduces Table 7: construction time, 13 large datasets.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig config = ParseArgs(argc, argv, LargeTableDefaults());
  RunTable(
      "Table 7: construction time (ms), large graphs",
      "DL comparable to the fastest methods and finishes everywhere; HL "
      "finishes where 2HOP cannot; 2HOP/KR/PT hit the budget on most "
      "graphs; GL always finishes",
      reach::LargeDatasets(), Metric::kConstructionMillis, WorkloadKind::kNone,
      config);
  return 0;
}
