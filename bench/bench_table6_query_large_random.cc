// Reproduces Table 6: query time, random workload, large graphs. The experiment itself
// (datasets, metric, workload, caption) is defined once in the registry
// (bench/experiments.cc); this binary is a thin lookup kept for muscle
// memory — bench_all --experiments=table6 runs the same thing.

#include "bench/experiments.h"

int main(int argc, char** argv) {
  return reach::bench::RunExperimentMain("table6", argc, argv);
}
