// Reproduces Table 6: query time on the random workload, 13 large datasets.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace reach::bench;
  BenchConfig config = ParseArgs(argc, argv, LargeTableDefaults());
  RunTable(
      "Table 6: query time (ms per 100k), random workload, large graphs",
      "same ordering as Table 5; oracle scans full labels on negatives but "
      "stays fastest; GL's interval pruning helps on mostly-negative load",
      reach::LargeDatasets(), Metric::kQueryMillis, WorkloadKind::kRandom,
      config);
  return 0;
}
