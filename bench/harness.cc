#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/factory.h"
#include "core/distribution_labeling.h"
#include "query/workload.h"
#include "util/timer.h"

namespace reach {
namespace bench {

namespace {

std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<DatasetSpec> FilterDatasets(const std::vector<DatasetSpec>& all,
                                        const BenchConfig& config) {
  if (config.datasets.empty()) return all;
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& spec : all) {
    for (const std::string& wanted : config.datasets) {
      if (spec.name == wanted) out.push_back(spec);
    }
  }
  return out;
}

std::vector<std::string> MethodsFor(const BenchConfig& config) {
  return config.methods.empty() ? PaperOracleNames() : config.methods;
}

void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace

BenchConfig SmallTableDefaults() {
  BenchConfig config;
  config.num_queries = 100000;
  config.build_time_budget_seconds = 60;
  config.build_index_budget_integers = 0;
  return config;
}

BenchConfig LargeTableDefaults() {
  BenchConfig config;
  config.num_queries = 10000;  // Normalized to ms/100k queries when printed.
  config.build_time_budget_seconds = 25;
  // ~600 MB of 32-bit integers; emulates the paper's 32 GB / 24 h budget at
  // laptop scale and produces the "--" entries of Tables 5-7.
  config.build_index_budget_integers = 150000000;
  return config;
}

BenchConfig ParseArgs(int argc, char** argv, const BenchConfig& defaults) {
  BenchConfig config = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      config.quick = true;
      config.num_queries = 2000;
      config.build_time_budget_seconds = 5;
      if (config.build_index_budget_integers == 0 ||
          config.build_index_budget_integers > 20000000) {
        config.build_index_budget_integers = 20000000;
      }
    } else if (arg.rfind("--queries=", 0) == 0) {
      config.num_queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--datasets=", 0) == 0) {
      config.datasets = SplitCsv(arg.substr(11));
    } else if (arg.rfind("--methods=", 0) == 0) {
      config.methods = SplitCsv(arg.substr(10));
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      config.build_time_budget_seconds = std::strtod(arg.c_str() + 17, nullptr);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (known: --quick --queries= --datasets= "
                   "--methods= --budget-seconds=)\n",
                   arg.c_str());
    }
  }
  return config;
}

void RunTable(const std::string& title, const std::string& shape_note,
              const std::vector<DatasetSpec>& all_datasets, Metric metric,
              WorkloadKind workload_kind, const BenchConfig& config) {
  const std::vector<DatasetSpec> datasets = FilterDatasets(all_datasets,
                                                           config);
  const std::vector<std::string> methods = MethodsFor(config);

  std::printf("== %s ==\n", title.c_str());
  std::printf("paper_shape: %s\n", shape_note.c_str());
  if (metric == Metric::kQueryMillis) {
    std::printf("metric: total ms per 100,000 queries (measured with %zu)\n",
                config.num_queries);
  } else if (metric == Metric::kConstructionMillis) {
    std::printf("metric: index construction ms\n");
  } else {
    std::printf("metric: index size in number of stored integers\n");
  }
  std::printf("budget: %.0fs build time%s; '--' = did not finish\n\n",
              config.build_time_budget_seconds,
              config.build_index_budget_integers > 0 ? ", capped index" : "");

  // Header.
  std::printf("%-16s", "dataset");
  for (const std::string& m : methods) std::printf("%12s", m.c_str());
  std::printf("\n");
  PrintRule(16 + 12 * methods.size());

  for (const DatasetSpec& spec : datasets) {
    const Digraph graph = MakeDataset(spec);

    // Workload (query tables only): ground truth via DL, whose correctness
    // the test suite establishes independently of any method under test.
    Workload workload;
    if (metric == Metric::kQueryMillis) {
      DistributionLabelingOracle truth;
      if (!truth.Build(graph).ok()) {
        std::printf("%-16s  <workload truth build failed>\n",
                    spec.name.c_str());
        continue;
      }
      WorkloadOptions options;
      options.num_queries = config.num_queries;
      options.seed = 7 + spec.seed;
      workload = workload_kind == WorkloadKind::kEqual
                     ? MakeEqualWorkload(graph, truth, options)
                     : MakeRandomWorkload(graph, truth, options);
    }

    std::printf("%-16s", spec.name.c_str());
    std::fflush(stdout);
    for (const std::string& method : methods) {
      std::unique_ptr<ReachabilityOracle> oracle = MakeOracle(method);
      if (oracle == nullptr) {
        std::printf("%12s", "?");
        continue;
      }
      BuildBudget budget;
      budget.max_seconds = config.build_time_budget_seconds;
      budget.max_index_integers = config.build_index_budget_integers;
      oracle->set_budget(budget);

      Timer build_timer;
      const Status status = oracle->Build(graph);
      const double build_ms = build_timer.ElapsedMillis();
      if (!status.ok()) {
        std::printf("%12s", "--");
        std::fflush(stdout);
        continue;
      }

      switch (metric) {
        case Metric::kConstructionMillis:
          std::printf("%12.1f", build_ms);
          break;
        case Metric::kIndexIntegers:
          std::printf("%12llu", static_cast<unsigned long long>(
                                    oracle->IndexSizeIntegers()));
          break;
        case Metric::kQueryMillis: {
          Timer query_timer;
          size_t hits = 0;
          for (const Query& q : workload.queries) {
            hits += oracle->Reachable(q.from, q.to);
          }
          const double ms = query_timer.ElapsedMillis() * 100000.0 /
                            static_cast<double>(workload.queries.size());
          // Guard against dead-code elimination of the query loop.
          if (hits == SIZE_MAX) std::printf("!");
          std::printf("%12.1f", ms);
          break;
        }
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void RunDatasetInventory(const std::vector<DatasetSpec>& small,
                         const std::vector<DatasetSpec>& large,
                         const BenchConfig& config) {
  std::printf("== Table 1: real datasets (synthetic stand-ins) ==\n");
  std::printf(
      "paper_shape: 14 small graphs at original scale; 13 large graphs "
      "scaled down per DESIGN.md 3.1\n\n");
  std::printf("%-16s %6s %12s %12s %12s %12s %-14s\n", "dataset", "scale",
              "paper |V|", "paper |E|", "ours |V|", "ours |E|", "family");
  PrintRule(92);
  auto print_group = [&](const std::vector<DatasetSpec>& specs) {
    for (const DatasetSpec& spec : FilterDatasets(specs, config)) {
      const Digraph g = MakeDataset(spec);
      std::printf("%-16s %6.3f %12zu %12zu %12zu %12zu %-14s\n",
                  spec.name.c_str(), spec.scale, spec.paper_vertices,
                  spec.paper_edges, g.num_vertices(), g.num_edges(),
                  GraphFamilyName(spec.family).c_str());
    }
  };
  print_group(small);
  PrintRule(92);
  print_group(large);
  std::printf("\n");
}

}  // namespace bench
}  // namespace reach
