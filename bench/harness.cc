#include "bench/harness.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

#include "baselines/factory.h"
#include "bench/experiments.h"
#include "datasets/registry.h"
#include "util/strict_parse.h"

namespace reach {
namespace bench {

namespace {

std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> KnownDatasetNames() {
  std::vector<std::string> names;
  for (const DatasetSpec& spec : SmallDatasets()) names.push_back(spec.name);
  for (const DatasetSpec& spec : LargeDatasets()) names.push_back(spec.name);
  for (const DatasetSpec& spec : XlDatasets()) names.push_back(spec.name);
  return names;
}

Status ParseUintValue(const std::string& flag, const std::string& text,
                      uint64_t* out) {
  if (!ParseDecimalUint64(text, out)) {
    return Status::InvalidArgument(
        flag + " expects a non-negative integer, got '" + text + "'");
  }
  return Status::OK();
}

/// Strict full-string parse of a non-negative finite decimal double flag
/// value: no sign, whitespace, or strtod's hex-float/nan/inf forms.
Status ParseDoubleValue(const std::string& flag, const std::string& text,
                        double* out) {
  const Status bad = Status::InvalidArgument(
      flag + " expects a non-negative number, got '" + text + "'");
  // The +/- are admitted for exponents ("2.5e+3") only, not as a leading
  // sign; the charset also excludes strtod's whitespace/hex/nan/inf forms.
  if (text.empty() ||
      text.find_first_not_of("0123456789.eE+-") != std::string::npos ||
      text[0] == '+' || text[0] == '-') {
    return bad;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(parsed) || parsed < 0) {
    return bad;
  }
  *out = parsed;
  return Status::OK();
}

Status ValidateNames(const std::string& flag,
                     const std::vector<std::string>& requested,
                     const std::vector<std::string>& known) {
  for (const std::string& name : requested) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown name '" + name + "' in " + flag +
                                     "; known: " + JoinNames(known));
    }
  }
  return Status::OK();
}

}  // namespace

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kQueryMillis:
      return "query_ms_per_100k";
    case Metric::kQueryNanos:
      return "query_ns";
    case Metric::kConstructionMillis:
      return "construction_ms";
    case Metric::kIndexIntegers:
      return "index_integers";
    case Metric::kServeQps:
      return "serve_qps";
    case Metric::kLoadMillis:
      return "load_ms";
  }
  return "unknown";
}

std::string WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kEqual:
      return "equal";
    case WorkloadKind::kRandom:
      return "random";
    case WorkloadKind::kNone:
      return "none";
  }
  return "unknown";
}

BenchConfig SmallTableDefaults() {
  BenchConfig config;
  config.num_queries = 100000;
  config.build_time_budget_seconds = 60;
  config.build_index_budget_integers = 0;
  return config;
}

BenchConfig LargeTableDefaults() {
  BenchConfig config;
  config.num_queries = 10000;  // Normalized to ms/100k queries when printed.
  config.build_time_budget_seconds = 25;
  // ~600 MB of 32-bit integers; emulates the paper's 32 GB / 24 h budget at
  // laptop scale and produces the "--" entries of Tables 5-7.
  config.build_index_budget_integers = 150000000;
  return config;
}

StatusOr<BenchOverrides> ParseArgs(int argc, char** argv,
                                   bool allow_experiments) {
  BenchOverrides overrides;
  // Help preempts validation: a user asking for usage must get it (and
  // exit 0) even when other flags on the line are malformed.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      overrides.help = true;
      return overrides;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      overrides.quick = true;
    } else if (arg.rfind("--queries=", 0) == 0) {
      uint64_t value = 0;
      REACH_RETURN_IF_ERROR(
          ParseUintValue("--queries", arg.substr(10), &value));
      if (value == 0) {
        return Status::InvalidArgument("--queries must be >= 1");
      }
      overrides.num_queries = static_cast<size_t>(value);
    } else if (arg.rfind("--datasets=", 0) == 0) {
      overrides.datasets = SplitCsv(arg.substr(11));
      REACH_RETURN_IF_ERROR(ValidateNames("--datasets", overrides.datasets,
                                          KnownDatasetNames()));
    } else if (arg.rfind("--methods=", 0) == 0) {
      overrides.methods = SplitCsv(arg.substr(10));
      REACH_RETURN_IF_ERROR(
          ValidateNames("--methods", overrides.methods, AllOracleNames()));
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      double value = 0;
      REACH_RETURN_IF_ERROR(
          ParseDoubleValue("--budget-seconds", arg.substr(17), &value));
      overrides.budget_seconds = value;
    } else if (arg.rfind("--threads=", 0) == 0) {
      uint64_t value = 0;
      REACH_RETURN_IF_ERROR(
          ParseUintValue("--threads", arg.substr(10), &value));
      if (value < 1 || value > 1024) {
        return Status::InvalidArgument("--threads must be in [1, 1024]");
      }
      overrides.threads = static_cast<int>(value);
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = arg.substr(9);
      if (format != "text" && format != "csv" && format != "json") {
        return Status::InvalidArgument(
            "--format must be text, csv, or json; got '" + format + "'");
      }
      overrides.format = format;
    } else if (arg.rfind("--out=", 0) == 0) {
      overrides.out_path = arg.substr(6);
      if (overrides.out_path.empty()) {
        return Status::InvalidArgument("--out requires a path");
      }
    } else if (allow_experiments && arg.rfind("--experiments=", 0) == 0) {
      overrides.experiments = SplitCsv(arg.substr(14));
      REACH_RETURN_IF_ERROR(ValidateNames("--experiments",
                                          overrides.experiments,
                                          ExperimentIds()));
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  return overrides;
}

BenchConfig ApplyOverrides(const BenchConfig& defaults,
                           const BenchOverrides& overrides) {
  BenchConfig config = defaults;
  if (overrides.quick) {
    config.quick = true;
    config.num_queries = 2000;
    config.build_time_budget_seconds = 5;
    if (config.build_index_budget_integers == 0 ||
        config.build_index_budget_integers > 20000000) {
      config.build_index_budget_integers = 20000000;
    }
  }
  // Explicit flags beat both the tier defaults and the --quick values.
  if (overrides.num_queries) config.num_queries = *overrides.num_queries;
  if (overrides.budget_seconds) {
    config.build_time_budget_seconds = *overrides.budget_seconds;
  }
  if (overrides.threads) config.threads = *overrides.threads;
  config.datasets = overrides.datasets;
  config.methods = overrides.methods;
  config.format = overrides.format;
  config.out_path = overrides.out_path;
  return config;
}

std::optional<BenchConfig> ParseAblationArgs(int argc, char** argv,
                                             int* exit_code) {
  static const char kAblationUsage[] =
      "flags (the ablation's dataset/method matrix is fixed; output is a "
      "text table on stdout):\n"
      "  --quick       smoke mode (few queries)\n"
      "  --queries=N   queries per workload (positive integer)\n";
  const StatusOr<BenchOverrides> overrides =
      ParseArgs(argc, argv, /*allow_experiments=*/false);
  if (!overrides.ok()) {
    std::fprintf(stderr, "%s\n%s", overrides.status().message().c_str(),
                 kAblationUsage);
    *exit_code = 2;
    return std::nullopt;
  }
  if (overrides->help) {
    std::printf("%s", kAblationUsage);
    *exit_code = 0;
    return std::nullopt;
  }
  if (!overrides->datasets.empty() || !overrides->methods.empty() ||
      overrides->budget_seconds.has_value() ||
      overrides->threads.has_value() || overrides->format != "text" ||
      !overrides->out_path.empty()) {
    std::fprintf(stderr,
                 "ablation benches accept only --quick and --queries=\n%s",
                 kAblationUsage);
    *exit_code = 2;
    return std::nullopt;
  }
  return ApplyOverrides(SmallTableDefaults(), *overrides);
}

std::string UsageString(bool allow_experiments) {
  std::string usage =
      "flags:\n"
      "  --quick              smoke mode (few queries, tight budgets)\n"
      "  --queries=N          queries per workload (positive integer)\n"
      "  --datasets=a,b,c     restrict to named datasets\n"
      "  --methods=DL,HL      restrict to named methods\n"
      "  --budget-seconds=S   build time budget (0 = unlimited)\n"
      "  --threads=N          construction worker threads (default: "
      "REACH_THREADS env, else hardware concurrency)\n"
      "  --format=FMT         text (default), csv, or json\n"
      "  --out=PATH           write the report to PATH instead of stdout\n";
  if (allow_experiments) {
    usage +=
        "  --experiments=a,b    restrict to named experiments (default: "
        "all)\n  known experiments: " +
        JoinNames(ExperimentIds()) + "\n";
  }
  usage += "  known datasets: " + JoinNames(KnownDatasetNames()) +
           "\n  known methods: " + JoinNames(AllOracleNames()) + "\n";
  return usage;
}

}  // namespace bench
}  // namespace reach
